(* Simulation-level validation of the A-QED monitors: drive the monitor's
   mark inputs explicitly on known-good and known-bad designs and watch the
   property signal — independently of BMC. *)

module Ir = Rtl.Ir
module Sim = Rtl.Sim

let bv w n = Bitvec.create ~width:w n

(* A minimal RTL echo accelerator: single outstanding transaction, 1-cycle
   latency, output held until taken. [twist] injects a parity corruption
   (every second transaction's output is XORed with 1). *)
let echo_design ?(twist = false) () =
  let c = Ir.create (if twist then "echo_twist" else "echo") in
  let in_valid, _, in_data, out_ready =
    Aqed.Iface.standard_inputs c ~data_width:4 ()
  in
  let have = Ir.reg0 c "have" 1 in
  let value = Ir.reg0 c "value" 4 in
  let parity = Ir.reg0 c "parity" 1 in
  let in_ready = Ir.lognot have in
  let in_fire = Ir.logand in_valid in_ready in
  let out_valid = have in
  let out_fire = Ir.logand out_valid out_ready in
  let base = Ir.add in_data (Ir.constant c ~width:4 3) in
  let stored =
    if twist then Ir.mux parity (Ir.logxor base (Ir.constant c ~width:4 1)) base
    else base
  in
  Ir.connect c value (Ir.mux in_fire stored value);
  Ir.connect c have
    (Ir.mux in_fire (Ir.vdd c) (Ir.mux out_fire (Ir.gnd c) have));
  Ir.connect c parity (Ir.mux in_fire (Ir.lognot parity) parity);
  Aqed.Iface.make c ~in_valid ~in_data ~in_ready ~out_valid ~out_data:value
    ~out_ready ()

(* Drive one transaction per handshake with explicit orig/dup marks; return
   the per-cycle values of the FC property. *)
let drive_fc iface (monitor : Aqed.Fc_monitor.t) script =
  let sim = Sim.create iface.Aqed.Iface.circuit in
  List.map
    (fun (valid, data, rdh, orig, dup) ->
      Sim.set_input sim "in_valid" (bv 1 (if valid then 1 else 0));
      Sim.set_input sim "in_data" (bv 4 data);
      Sim.set_input sim "out_ready" (bv 1 (if rdh then 1 else 0));
      Sim.set_input sim "aqed_orig_mark" (bv 1 (if orig then 1 else 0));
      Sim.set_input sim "aqed_dup_mark" (bv 1 (if dup then 1 else 0));
      let ok = Sim.peek_int sim monitor.Aqed.Fc_monitor.prop = 1 in
      let assumes = Sim.assumes_hold sim in
      Sim.step sim;
      (ok, assumes))
    script

let test_fc_monitor_clean () =
  let iface = echo_design () in
  let monitor = Aqed.Fc_monitor.add ~cnt_width:4 iface in
  (* txn1 = orig (data 5), txn2 = dup (data 5): outputs must match. *)
  let script =
    [
      (true, 5, true, true, false);   (* capture orig *)
      (false, 0, true, false, false); (* output 8 emitted *)
      (true, 5, true, false, true);   (* capture dup *)
      (false, 0, true, false, false); (* dup output 8 emitted: compared *)
      (false, 0, true, false, false);
    ]
  in
  let results = drive_fc iface monitor script in
  List.iteri
    (fun i (ok, assumes) ->
      Alcotest.(check bool) (Printf.sprintf "prop holds at %d" i) true ok;
      Alcotest.(check bool) (Printf.sprintf "assumes hold at %d" i) true assumes)
    results

let test_fc_monitor_catches_twist () =
  let iface = echo_design ~twist:true () in
  let monitor = Aqed.Fc_monitor.add ~cnt_width:4 iface in
  let script =
    [
      (true, 5, true, true, false);
      (false, 0, true, false, false);
      (true, 5, true, false, true);
      (false, 0, true, false, false);  (* dup output differs: violation *)
    ]
  in
  let results = drive_fc iface monitor script in
  Alcotest.(check bool) "violation observed" true
    (List.exists (fun (ok, _) -> not ok) results)

let test_fc_monitor_dup_needs_equal_data () =
  let iface = echo_design () in
  let monitor = Aqed.Fc_monitor.add ~cnt_width:4 iface in
  (* Marking a dup with different data violates the environment assumption,
     which is exactly what BMC is forbidden from doing. *)
  let script =
    [
      (true, 5, true, true, false);
      (false, 0, true, false, false);
      (true, 9, true, false, true);
    ]
  in
  let results = drive_fc iface monitor script in
  Alcotest.(check bool) "assumption violated on mismatched dup" true
    (List.exists (fun (_, assumes) -> not assumes) results)

let test_fc_monitor_diagnostics () =
  let iface = echo_design () in
  let monitor = Aqed.Fc_monitor.add ~cnt_width:4 iface in
  let sim = Sim.create iface.Aqed.Iface.circuit in
  let feed (valid, data, rdh, orig, dup) =
    Sim.set_input sim "in_valid" (bv 1 (if valid then 1 else 0));
    Sim.set_input sim "in_data" (bv 4 data);
    Sim.set_input sim "out_ready" (bv 1 (if rdh then 1 else 0));
    Sim.set_input sim "aqed_orig_mark" (bv 1 (if orig then 1 else 0));
    Sim.set_input sim "aqed_dup_mark" (bv 1 (if dup then 1 else 0));
    Sim.step sim
  in
  Alcotest.(check int) "orig not taken initially" 0
    (Sim.peek_int sim monitor.Aqed.Fc_monitor.orig_taken);
  feed (true, 5, true, true, false);
  Alcotest.(check int) "orig taken" 1
    (Sim.peek_int sim monitor.Aqed.Fc_monitor.orig_taken);
  feed (false, 0, true, false, false);
  Alcotest.(check int) "orig done after output" 1
    (Sim.peek_int sim monitor.Aqed.Fc_monitor.orig_done);
  feed (true, 5, true, false, true);
  Alcotest.(check int) "dup taken" 1
    (Sim.peek_int sim monitor.Aqed.Fc_monitor.dup_taken);
  feed (false, 0, true, false, false);
  Alcotest.(check int) "dup done" 1
    (Sim.peek_int sim monitor.Aqed.Fc_monitor.dup_done);
  Alcotest.(check int) "two inputs counted" 2
    (Sim.peek_int sim monitor.Aqed.Fc_monitor.in_count);
  Alcotest.(check int) "two outputs counted" 2
    (Sim.peek_int sim monitor.Aqed.Fc_monitor.out_count)

(* ---- RB monitor ---- *)

(* A design that goes permanently deaf after [break_after] captured inputs:
   outputs for later inputs never appear. *)
let deaf_design ~break_after () =
  let c = Ir.create "deaf" in
  let in_valid, _, in_data, out_ready =
    Aqed.Iface.standard_inputs c ~data_width:4 ()
  in
  let have = Ir.reg0 c "have" 1 in
  let value = Ir.reg0 c "value" 4 in
  let seen = Ir.reg0 c "seen" 3 in
  let dead = Ir.uge seen (Ir.constant c ~width:3 break_after) in
  let in_ready = Ir.lognot have in
  let in_fire = Ir.logand in_valid in_ready in
  let out_valid = Ir.logand have (Ir.lognot dead) in
  let out_fire = Ir.logand out_valid out_ready in
  Ir.connect c value (Ir.mux in_fire in_data value);
  Ir.connect c have
    (Ir.mux in_fire (Ir.vdd c) (Ir.mux out_fire (Ir.gnd c) have));
  Ir.connect c seen
    (Ir.mux in_fire (Ir.add seen (Ir.constant c ~width:3 1)) seen);
  Aqed.Iface.make c ~in_valid ~in_data ~in_ready ~out_valid ~out_data:value
    ~out_ready ()

let drive_rb iface (monitor : Aqed.Rb_monitor.t) script =
  let sim = Sim.create iface.Aqed.Iface.circuit in
  List.map
    (fun (valid, data, rdh, track) ->
      Sim.set_input sim "in_valid" (bv 1 (if valid then 1 else 0));
      Sim.set_input sim "in_data" (bv 4 data);
      Sim.set_input sim "out_ready" (bv 1 (if rdh then 1 else 0));
      Sim.set_input sim "aqed_track_mark" (bv 1 (if track then 1 else 0));
      let resp = Sim.peek_int sim monitor.Aqed.Rb_monitor.response_prop = 1 in
      Sim.step sim;
      resp)
    script

let test_rb_monitor_clean () =
  let iface = echo_design () in
  let monitor = Aqed.Rb_monitor.add ~cnt_width:5 ~tau:3 iface in
  let txn track = [ (true, 4, true, track); (false, 0, true, false) ] in
  let script = txn true @ txn false @ txn false @ txn false in
  let results = drive_rb iface monitor script in
  Alcotest.(check bool) "responsive design passes" true
    (List.for_all Fun.id results)

let test_rb_monitor_catches_deaf () =
  (* After its first captured input the design goes deaf: that input's
     output never appears. Track it and give the host plenty of ready
     cycles. *)
  let iface = deaf_design ~break_after:1 () in
  let monitor = Aqed.Rb_monitor.add ~cnt_width:5 ~tau:3 iface in
  let script =
    [ (true, 4, true, true);
      (false, 0, true, false); (false, 0, true, false);
      (false, 0, true, false); (false, 0, true, false);
      (false, 0, true, false) ]
  in
  let results = drive_rb iface monitor script in
  Alcotest.(check bool) "deaf design caught" true
    (List.exists (fun ok -> not ok) results)

let test_rb_starvation () =
  (* in_ready permanently low: the starvation property must trip. *)
  let c = Ir.create "starve" in
  let in_valid, _, in_data, out_ready =
    Aqed.Iface.standard_inputs c ~data_width:4 ()
  in
  ignore in_data;
  let never = Ir.gnd c in
  let iface =
    Aqed.Iface.make c ~in_valid ~in_data ~in_ready:never ~out_valid:never
      ~out_data:(Ir.constant c ~width:4 0) ~out_ready ()
  in
  let monitor = Aqed.Rb_monitor.add ~cnt_width:5 ~tau:3 ~starvation_bound:3 iface in
  let sim = Sim.create c in
  (* Starvation only counts while the host cooperates (out_ready high). *)
  Sim.set_input sim "out_ready" (bv 1 1);
  let violated = ref false in
  for _ = 1 to 8 do
    if Sim.peek_int sim monitor.Aqed.Rb_monitor.starvation_prop = 0 then
      violated := true;
    Sim.step sim
  done;
  Alcotest.(check bool) "starvation detected" true !violated;
  (* With the host not ready, no starvation verdict. *)
  let sim2 = Sim.create c in
  Sim.set_input sim2 "out_ready" (bv 1 0);
  let violated2 = ref false in
  for _ = 1 to 8 do
    if Sim.peek_int sim2 monitor.Aqed.Rb_monitor.starvation_prop = 0 then
      violated2 := true;
    Sim.step sim2
  done;
  Alcotest.(check bool) "no starvation without host fairness" false !violated2

(* ---- SAC monitor ---- *)

let test_sac_monitor () =
  let spec_plus3 ad =
    Ir.add ad (Ir.constant (Ir.circuit_of ad) ~width:4 3)
  in
  let check ~twist ~spec expect_ok =
    let iface = echo_design ~twist () in
    let monitor = Aqed.Sac_monitor.add ~spec iface in
    let sim = Sim.create iface.Aqed.Iface.circuit in
    let ok = ref true in
    let feed (valid, data, rdh) =
      Sim.set_input sim "in_valid" (bv 1 (if valid then 1 else 0));
      Sim.set_input sim "in_data" (bv 4 data);
      Sim.set_input sim "out_ready" (bv 1 (if rdh then 1 else 0));
      if Sim.peek_int sim monitor.Aqed.Sac_monitor.prop = 0 then ok := false;
      Sim.step sim
    in
    List.iter feed [ (true, 5, true); (false, 0, true); (false, 0, true) ];
    Alcotest.(check bool) "sac verdict" expect_ok !ok
  in
  (* The echo design computes d + 3 for the first transaction (parity 0),
     so the correct spec passes on both variants\' first output only when
     the twist is off. *)
  check ~twist:false ~spec:spec_plus3 true;
  check ~twist:true ~spec:spec_plus3 true;
  (* A wrong spec fails even the good design. *)
  let spec_wrong ad = Ir.add ad (Ir.constant (Ir.circuit_of ad) ~width:4 4) in
  check ~twist:false ~spec:spec_wrong false

let suite =
  ( "monitors",
    [
      Alcotest.test_case "FC monitor passes clean design" `Quick test_fc_monitor_clean;
      Alcotest.test_case "FC monitor catches inconsistency" `Quick test_fc_monitor_catches_twist;
      Alcotest.test_case "FC dup constrained to equal data" `Quick test_fc_monitor_dup_needs_equal_data;
      Alcotest.test_case "FC diagnostics" `Quick test_fc_monitor_diagnostics;
      Alcotest.test_case "RB monitor passes clean design" `Quick test_rb_monitor_clean;
      Alcotest.test_case "RB monitor catches missing output" `Quick test_rb_monitor_catches_deaf;
      Alcotest.test_case "RB starvation property" `Quick test_rb_starvation;
      Alcotest.test_case "SAC monitor" `Quick test_sac_monitor;
    ] )
