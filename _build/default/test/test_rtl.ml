(* Tests for the RTL IR, the cycle-accurate simulator, memories and the
   bit-blaster — including a randomized end-to-end equivalence check between
   the simulator and the AIG produced by blasting. *)

module Ir = Rtl.Ir
module Sim = Rtl.Sim
module Aig = Logic.Aig

let bv w n = Bitvec.create ~width:w n

(* ---- IR construction rules ---- *)

let test_widths () =
  let c = Ir.create "t" in
  let a = Ir.input c "a" 4 and b = Ir.input c "b" 8 in
  Alcotest.(check int) "input width" 4 (Ir.width a);
  Alcotest.check_raises "binop width mismatch"
    (Invalid_argument "Ir.binop: width mismatch (4 vs 8)") (fun () ->
      ignore (Ir.add a b));
  Alcotest.(check int) "eq is 1 bit" 1 (Ir.width (Ir.eq a a));
  Alcotest.(check int) "concat adds" 12 (Ir.width (Ir.concat a b));
  Alcotest.(check int) "select" 3 (Ir.width (Ir.select b ~hi:4 ~lo:2));
  Alcotest.(check int) "reduce" 1 (Ir.width (Ir.reduce_or b));
  Alcotest.(check int) "zero_extend" 16 (Ir.width (Ir.zero_extend a 16));
  Alcotest.(check int) "resize down" 2 (Ir.width (Ir.resize b 2))

let test_circuit_separation () =
  let c1 = Ir.create "c1" and c2 = Ir.create "c2" in
  let a = Ir.input c1 "a" 4 and b = Ir.input c2 "b" 4 in
  Alcotest.check_raises "cross-circuit rejected"
    (Invalid_argument "Ir: signals belong to different circuits") (fun () ->
      ignore (Ir.add a b))

let test_register_rules () =
  let c = Ir.create "t" in
  let r = Ir.reg0 c "r" 4 in
  Alcotest.check_raises "unconnected register caught"
    (Failure "circuit t: register r is not connected") (fun () ->
      Ir.validate c);
  Ir.connect c r (Ir.add r (Ir.constant c ~width:4 1));
  Ir.validate c;
  Alcotest.check_raises "double connect"
    (Invalid_argument "Ir.connect: register already connected") (fun () ->
      Ir.connect c r r);
  let x = Ir.input c "x" 4 in
  Alcotest.check_raises "connect non-register"
    (Invalid_argument "Ir.connect: not a register") (fun () ->
      Ir.connect c x x)

let test_outputs () =
  let c = Ir.create "t" in
  let a = Ir.input c "a" 4 in
  Ir.output c "a_out" a;
  Alcotest.(check bool) "find_output" true (Ir.find_output c "a_out" == a);
  Alcotest.check_raises "duplicate output"
    (Invalid_argument "Ir.output: duplicate output a_out") (fun () ->
      Ir.output c "a_out" a)

(* ---- simulator semantics ---- *)

let test_sim_comb () =
  let c = Ir.create "comb" in
  let a = Ir.input c "a" 8 and b = Ir.input c "b" 8 in
  let sum = Ir.add a b in
  let prod = Ir.mul a b in
  let cmp = Ir.ult a b in
  let sh = Ir.srlv a (Ir.resize b 3) in
  Ir.output c "dummy" sum;
  let sim = Sim.create c in
  Sim.set_input sim "a" (bv 8 200);
  Sim.set_input sim "b" (bv 8 100);
  Alcotest.(check int) "add" ((200 + 100) land 255) (Sim.peek_int sim sum);
  Alcotest.(check int) "mul" ((200 * 100) land 255) (Sim.peek_int sim prod);
  Alcotest.(check int) "ult" 0 (Sim.peek_int sim cmp);
  Alcotest.(check int) "srlv" (200 lsr (100 land 7)) (Sim.peek_int sim sh)

let test_sim_reg () =
  let c = Ir.create "counter" in
  let en = Ir.input c "en" 1 in
  let r =
    Ir.reg_fb c "cnt" ~init:(bv 4 7) (fun r ->
        Ir.mux en (Ir.add r (Ir.constant c ~width:4 1)) r)
  in
  let sim = Sim.create c in
  Alcotest.(check int) "init value" 7 (Sim.peek_int sim r);
  Sim.set_input sim "en" (bv 1 1);
  Sim.step sim;
  Alcotest.(check int) "after step" 8 (Sim.peek_int sim r);
  Sim.set_input sim "en" (bv 1 0);
  Sim.step sim;
  Alcotest.(check int) "held" 8 (Sim.peek_int sim r);
  Alcotest.(check int) "cycle count" 2 (Sim.cycle sim);
  Sim.reset sim;
  Alcotest.(check int) "reset restores init" 7 (Sim.peek_int sim r);
  Alcotest.(check int) "reset clears cycles" 0 (Sim.cycle sim)

let test_sim_two_phase () =
  (* Register chain: both registers must update from pre-step values. *)
  let c = Ir.create "chain" in
  let x = Ir.input c "x" 4 in
  let r1 = Ir.reg0 c "r1" 4 in
  let r2 = Ir.reg0 c "r2" 4 in
  Ir.connect c r1 x;
  Ir.connect c r2 r1;
  let sim = Sim.create c in
  Sim.set_input sim "x" (bv 4 9);
  Sim.step sim;
  Alcotest.(check int) "r1 took x" 9 (Sim.peek_int sim r1);
  Alcotest.(check int) "r2 still old" 0 (Sim.peek_int sim r2);
  Sim.step sim;
  Alcotest.(check int) "r2 one cycle behind" 9 (Sim.peek_int sim r2)

let test_sim_undriven_inputs () =
  let c = Ir.create "u" in
  let a = Ir.input c "a" 8 in
  let sim = Sim.create c in
  Alcotest.(check int) "undriven input reads 0" 0 (Sim.peek_int sim a);
  Alcotest.check_raises "unknown input name" Not_found (fun () ->
      Sim.set_input sim "nope" (bv 1 0))

let test_sim_assumes () =
  let c = Ir.create "asm" in
  let a = Ir.input c "a" 1 in
  Ir.assume c a;
  let sim = Sim.create c in
  Alcotest.(check bool) "assume fails on 0" false (Sim.assumes_hold sim);
  Sim.set_input sim "a" (bv 1 1);
  Alcotest.(check bool) "assume holds on 1" true (Sim.assumes_hold sim)

let test_mem () =
  let c = Ir.create "mem" in
  let we = Ir.input c "we" 1 in
  let waddr = Ir.input c "waddr" 2 in
  let wdata = Ir.input c "wdata" 8 in
  let raddr = Ir.input c "raddr" 2 in
  let m = Rtl.Mem.create c "m" ~size:4 ~width:8 in
  Rtl.Mem.write_port m ~enable:we ~addr:waddr ~data:wdata;
  let rdata = Rtl.Mem.read m raddr in
  let sim = Sim.create c in
  Sim.set_input sim "we" (bv 1 1);
  Sim.set_input sim "waddr" (bv 2 2);
  Sim.set_input sim "wdata" (bv 8 0xAB);
  Sim.step sim;
  Sim.set_input sim "we" (bv 1 0);
  Sim.set_input sim "raddr" (bv 2 2);
  Alcotest.(check int) "read back" 0xAB (Sim.peek_int sim rdata);
  Sim.set_input sim "raddr" (bv 2 0);
  Alcotest.(check int) "other word zero" 0 (Sim.peek_int sim rdata);
  Alcotest.(check int) "word accessor" 0xAB
    (Sim.peek_int sim (Rtl.Mem.word m 2))

(* ---- blast vs simulator equivalence on random circuits ---- *)

(* A deterministic random circuit: a few inputs, registers and layers of
   random operators; compare Sim against frame-by-frame AIG evaluation. *)
let random_circuit seed =
  let st = Random.State.make [| seed |] in
  let c = Ir.create (Printf.sprintf "rand%d" seed) in
  let w = 1 + Random.State.int st 6 in
  let inputs = Array.init 2 (fun i -> Ir.input c (Printf.sprintf "in%d" i) w) in
  let regs = Array.init 2 (fun i -> Ir.reg0 c (Printf.sprintf "r%d" i) w) in
  let pool = ref (Array.to_list inputs @ Array.to_list regs) in
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  for _ = 1 to 8 do
    let a = pick () and b = pick () in
    let s =
      match Random.State.int st 12 with
      | 0 -> Ir.add a b
      | 1 -> Ir.sub a b
      | 2 -> Ir.logand a b
      | 3 -> Ir.logor a b
      | 4 -> Ir.logxor a b
      | 5 -> Ir.lognot a
      | 6 -> Ir.mul a b
      | 7 -> Ir.mux (Ir.reduce_or a) a b
      | 8 -> Ir.sll a (Random.State.int st w)
      | 9 -> Ir.resize (Ir.concat a b) w
      | 10 -> Ir.zero_extend (Ir.eq a b) w
      | _ -> Ir.srlv a b
    in
    pool := s :: !pool
  done;
  Array.iter (fun r -> Ir.connect c r (pick ())) regs;
  let out = pick () in
  Ir.output c "out" out;
  (c, out, w)

let blast_eval_frames circuit out n_frames input_values =
  (* Evaluate the blasted AIG frame by frame, threading latch values. *)
  let blast = Rtl.Blast.create circuit in
  let out_bits = Rtl.Blast.lits blast out in
  Rtl.Blast.finalize blast;
  let latches = Rtl.Blast.latches blast in
  let g = Rtl.Blast.aig blast in
  let input_bits = Rtl.Blast.input_bits blast in
  let state = Hashtbl.create 16 in
  List.iter
    (fun (l : Rtl.Blast.latch) ->
      Array.iteri
        (fun i cur ->
          Hashtbl.replace state (Aig.node_index cur) (Bitvec.bit l.init i))
        l.cur)
    latches;
  List.init n_frames (fun frame ->
      let env idx =
        match Hashtbl.find_opt state idx with
        | Some b -> b
        | None ->
          (* Primary input bit: look it up in this frame's values. *)
          let rec find = function
            | [] -> false
            | (s, bits) :: rest ->
              let rec scan i =
                if i >= Array.length bits then find rest
                else if Aig.node_index bits.(i) = idx then
                  Bitvec.bit (List.assoc (Ir.id s) (List.nth input_values frame)) i
                else scan (i + 1)
              in
              scan 0
          in
          find input_bits
      in
      let out_val =
        Bitvec.of_bits (Array.to_list (Array.map (Aig.eval g env) out_bits))
      in
      (* Advance latches. *)
      let next_vals =
        List.map
          (fun (l : Rtl.Blast.latch) ->
            (l, Array.map (Aig.eval g env) l.next))
          latches
      in
      List.iter
        (fun ((l : Rtl.Blast.latch), vals) ->
          Array.iteri
            (fun i cur -> Hashtbl.replace state (Aig.node_index cur) vals.(i))
            l.cur)
        next_vals;
      out_val)

let prop_blast_matches_sim =
  QCheck.Test.make ~name:"bit-blaster agrees with the simulator" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let circuit, out, w = random_circuit seed in
      let st = Random.State.make [| seed + 1 |] in
      let n_frames = 5 in
      let input_values =
        List.init n_frames (fun _ ->
            List.filter_map
              (fun s ->
                match Ir.signal_name s with
                | Some _ -> Some (Ir.id s, bv w (Random.State.int st (1 lsl w)))
                | None -> None)
              (Ir.inputs circuit))
      in
      (* Simulator run. *)
      let sim = Sim.create circuit in
      let sim_outs =
        List.map
          (fun frame_inputs ->
            List.iter
              (fun (sid, v) ->
                let s =
                  List.find (fun s -> Ir.id s = sid) (Ir.inputs circuit)
                in
                match Ir.signal_name s with
                | Some n -> Sim.set_input sim n v
                | None -> ())
              frame_inputs;
            let v = Sim.peek sim out in
            Sim.step sim;
            v)
          input_values
      in
      let aig_outs = blast_eval_frames circuit out n_frames input_values in
      List.for_all2 Bitvec.equal sim_outs aig_outs)

let suite =
  ( "rtl",
    [
      Alcotest.test_case "width rules" `Quick test_widths;
      Alcotest.test_case "circuit separation" `Quick test_circuit_separation;
      Alcotest.test_case "register rules" `Quick test_register_rules;
      Alcotest.test_case "outputs" `Quick test_outputs;
      Alcotest.test_case "sim combinational ops" `Quick test_sim_comb;
      Alcotest.test_case "sim registers and reset" `Quick test_sim_reg;
      Alcotest.test_case "sim two-phase update" `Quick test_sim_two_phase;
      Alcotest.test_case "sim undriven inputs" `Quick test_sim_undriven_inputs;
      Alcotest.test_case "sim assumes" `Quick test_sim_assumes;
      Alcotest.test_case "memory" `Quick test_mem;
      QCheck_alcotest.to_alcotest prop_blast_matches_sim;
    ] )
