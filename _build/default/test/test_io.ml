(* Tests for the interchange/export features: AIGER read/write, the BMC
   AIGER export, the Verilog netlist writer, and the post-silicon QED
   checker. *)

module Ir = Rtl.Ir
module Aig = Logic.Aig
module Aiger = Logic.Aiger

let bv w n = Bitvec.create ~width:w n

(* ---- AIGER ---- *)

(* A small sequential AIG by hand: one input, one latch toggling when the
   input is high, output = latch. *)
let toggle_aiger () =
  let g = Aig.create () in
  let inp = Aig.input g "in" in
  let latch = Aig.input g "latch" in
  let next = Aig.xor_ g latch inp in
  {
    Aiger.aig = g;
    inputs = [ inp ];
    latches = [ (latch, next, false) ];
    outputs = [ (Some "toggle", latch) ];
    bad = [];
  }

let test_aiger_write_format () =
  let text = Aiger.to_string (toggle_aiger ()) in
  let first_line =
    match String.split_on_char '\n' text with l :: _ -> l | [] -> ""
  in
  (* 1 input, 1 latch, 1 output; xor = 3 AND gates. *)
  Alcotest.(check string) "header" "aag 5 1 1 1 3" first_line;
  Alcotest.(check bool) "symbol table" true
    (String.length text > 0
    &&
    let contains needle =
      let n = String.length needle and h = String.length text in
      let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
      go 0
    in
    contains "o0 toggle")

(* Semantic roundtrip: simulate both AIGs over random stimulus. *)
let simulate_aiger (t : Aiger.t) stimulus =
  let state = Hashtbl.create 4 in
  List.iter
    (fun (cur, _, init) -> Hashtbl.replace state (Aig.node_index cur) init)
    t.Aiger.latches;
  List.map
    (fun input_bits ->
      let env idx =
        match Hashtbl.find_opt state idx with
        | Some b -> b
        | None ->
          (* Input nodes, positionally. *)
          let rec find k = function
            | [] -> false
            | l :: rest ->
              if Aig.node_index l = idx then List.nth input_bits k
              else find (k + 1) rest
          in
          find 0 t.Aiger.inputs
      in
      let outs =
        List.map (fun (_, o) -> Aig.eval t.Aiger.aig env o) t.Aiger.outputs
      in
      let nexts =
        List.map
          (fun (cur, next, _) -> (Aig.node_index cur, Aig.eval t.Aiger.aig env next))
          t.Aiger.latches
      in
      List.iter (fun (idx, v) -> Hashtbl.replace state idx v) nexts;
      outs)
    stimulus

let test_aiger_roundtrip () =
  let original = toggle_aiger () in
  let reread = Aiger.parse_string (Aiger.to_string original) in
  Alcotest.(check int) "inputs preserved" 1 (List.length reread.Aiger.inputs);
  Alcotest.(check int) "latches preserved" 1 (List.length reread.Aiger.latches);
  let stimulus = [ [ true ]; [ false ]; [ true ]; [ true ]; [ false ] ] in
  Alcotest.(check (list (list bool))) "behaviour preserved"
    (simulate_aiger original stimulus)
    (simulate_aiger reread stimulus)

let prop_aiger_roundtrip_random =
  (* Random combinational AIGs over 3 inputs: write/read/compare truth. *)
  QCheck.Test.make ~name:"aiger roundtrip preserves semantics" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let g = Aig.create () in
      let inputs = List.init 3 (fun i -> Aig.input g (Printf.sprintf "x%d" i)) in
      let pool = ref inputs in
      for _ = 1 to 6 do
        let pick () =
          let l = List.nth !pool (Random.State.int st (List.length !pool)) in
          if Random.State.bool st then Aig.not_ l else l
        in
        pool := Aig.and_ g (pick ()) (pick ()) :: !pool
      done;
      let out = List.nth !pool (Random.State.int st (List.length !pool)) in
      let doc =
        { Aiger.aig = g; inputs; latches = []; outputs = [ (None, out) ];
          bad = [] }
      in
      let reread = Aiger.parse_string (Aiger.to_string doc) in
      let truth (t : Aiger.t) bits =
        let env idx =
          let rec find k = function
            | [] -> false
            | l :: rest ->
              if Aig.node_index l = idx then List.nth bits k
              else find (k + 1) rest
          in
          find 0 t.Aiger.inputs
        in
        match t.Aiger.outputs with
        | [ (_, o) ] -> Aig.eval t.Aiger.aig env o
        | _ -> false
      in
      List.for_all
        (fun bits -> truth doc bits = truth reread bits)
        [ [ false; false; false ]; [ true; false; false ];
          [ false; true; false ]; [ false; false; true ];
          [ true; true; false ]; [ true; false; true ];
          [ false; true; true ]; [ true; true; true ] ])

let test_aiger_parse_errors () =
  let expect_fail text =
    match Aiger.parse_string text with
    | _ -> Alcotest.fail "expected parse failure"
    | exception Failure _ -> ()
  in
  expect_fail "not an aiger file";
  expect_fail "aag 1 1\n";
  expect_fail "aig 1 1 0 0 0\n";
  expect_fail "aag 1 1 0 1 0\n2\n5\n"  (* output references undefined var 2 *)

let test_bmc_export () =
  let c = Ir.create "exp" in
  let en = Ir.input c "en" 1 in
  let cnt =
    Ir.reg_fb c "cnt" ~init:(bv 3 0) (fun r ->
        Ir.mux en (Ir.add r (Ir.constant c ~width:3 1)) r)
  in
  let prop = Ir.ne cnt (Ir.constant c ~width:3 5) in
  let path = Filename.temp_file "aqed_export" ".aag" in
  let oc = open_out path in
  Bmc.Engine.export_aiger c ~prop oc;
  close_out oc;
  let ic = open_in path in
  let doc = Aiger.read_channel ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "one input bit" 1 (List.length doc.Aiger.inputs);
  Alcotest.(check int) "three latch bits" 3 (List.length doc.Aiger.latches);
  Alcotest.(check int) "one bad" 1 (List.length doc.Aiger.bad);
  (* Drive the re-read AIGER to the bad state: en=1 for 5 steps. *)
  let state = Hashtbl.create 4 in
  List.iter
    (fun (cur, _, init) -> Hashtbl.replace state (Aig.node_index cur) init)
    doc.Aiger.latches;
  let bad_seen = ref false in
  for _ = 1 to 6 do
    let env idx =
      match Hashtbl.find_opt state idx with
      | Some b -> b
      | None -> true (* the single input: en = 1 *)
    in
    (match doc.Aiger.bad with
     | [ b ] -> if Aig.eval doc.Aiger.aig env b then bad_seen := true
     | _ -> ());
    let nexts =
      List.map
        (fun (cur, next, _) ->
          (Aig.node_index cur, Aig.eval doc.Aiger.aig env next))
        doc.Aiger.latches
    in
    List.iter (fun (idx, v) -> Hashtbl.replace state idx v) nexts
  done;
  Alcotest.(check bool) "bad state reachable at count=5" true !bad_seen

(* ---- Verilog ---- *)

let test_verilog_writer () =
  let c = Ir.create "vtest" in
  let a = Ir.input c "a" 4 in
  let b = Ir.input c "b" 4 in
  let r = Ir.reg c "acc" ~init:(bv 4 3) in
  Ir.connect c r (Ir.add r (Ir.mux (Ir.ult a b) a b));
  Ir.output c "sum" (Ir.logxor r (Ir.concat (Ir.select a ~hi:1 ~lo:0) (Ir.select b ~hi:1 ~lo:0)));
  let text = Rtl.Verilog.to_string c in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module vtest(");
  Alcotest.(check bool) "clk port" true (contains "input clk;");
  Alcotest.(check bool) "input decl" true (contains "input [3:0] a;");
  Alcotest.(check bool) "reg with init" true (contains "reg [3:0] acc = 4'h3;");
  Alcotest.(check bool) "always block" true (contains "always @(posedge clk)");
  Alcotest.(check bool) "nonblocking assign" true (contains "acc <= ");
  Alcotest.(check bool) "mux" true (contains " ? ");
  Alcotest.(check bool) "concat" true (contains "{");
  Alcotest.(check bool) "output" true (contains "assign out_sum = ");
  Alcotest.(check bool) "endmodule" true (contains "endmodule")

let test_verilog_validates () =
  let c = Ir.create "unconnected" in
  let _r = Ir.reg0 c "r" 2 in
  Alcotest.(check bool) "unconnected register rejected" true
    (match Rtl.Verilog.to_string c with
     | _ -> false
     | exception Failure _ -> true)

let test_verilog_name_collision () =
  let c = Ir.create "clash" in
  let a = Ir.input c "x" 2 in
  let r = Ir.reg0 c "x" 2 in
  Ir.connect c r a;
  Ir.output c "o" r;
  let text = Rtl.Verilog.to_string c in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  (* Both names survive, one uniquified. *)
  Alcotest.(check bool) "uniquified name present" true (contains "x_1")

(* ---- Verilog roundtrip ---- *)

(* Write a circuit to Verilog, parse it back, and compare simulations. *)
let roundtrip_circuit build stimulus out_name =
  let c1 = build () in
  let text = Rtl.Verilog.to_string c1 in
  let c2 = Rtl.Verilog_reader.parse_string text in
  let run c =
    let sim = Rtl.Sim.create c in
    let out = Ir.find_output c out_name in
    List.map
      (fun frame ->
        List.iter (fun (n, v) -> Rtl.Sim.set_input sim n v) frame;
        let v = Rtl.Sim.peek sim out in
        Rtl.Sim.step sim;
        Bitvec.to_int v)
      stimulus
  in
  (run c1, run c2)

let test_verilog_roundtrip_comb () =
  let build () =
    let c = Ir.create "comb_rt" in
    let a = Ir.input c "a" 4 and b = Ir.input c "b" 4 in
    let r =
      Ir.mux (Ir.ult a b)
        (Ir.add (Ir.mul a b) (Ir.constant c ~width:4 3))
        (Ir.logxor (Ir.sll a 1) (Ir.srl b 2))
    in
    Ir.output c "f" (Ir.concat (Ir.reduce_or r) (Ir.sub r a));
    c
  in
  let st = Random.State.make [| 7 |] in
  let stimulus =
    List.init 12 (fun _ ->
        [ ("a", bv 4 (Random.State.int st 16));
          ("b", bv 4 (Random.State.int st 16)) ])
  in
  let o1, o2 = roundtrip_circuit build stimulus "f" in
  Alcotest.(check (list int)) "combinational roundtrip" o1 o2

let test_verilog_roundtrip_seq () =
  let build () =
    let c = Ir.create "seq_rt" in
    let en = Ir.input c "en" 1 in
    let d = Ir.input c "d" 6 in
    let acc =
      Ir.reg_fb c "acc" ~init:(bv 6 9) (fun r ->
          Ir.mux en (Ir.add r d) r)
    in
    let sr = Ir.reg0 c "sr" 6 in
    Ir.connect c sr acc;
    Ir.output c "acc_out" acc;
    Ir.output c "delayed" (Ir.logand sr (Ir.lognot d));
    c
  in
  let st = Random.State.make [| 8 |] in
  let stimulus =
    List.init 14 (fun _ ->
        [ ("en", bv 1 (Random.State.int st 2));
          ("d", bv 6 (Random.State.int st 64)) ])
  in
  let o1, o2 = roundtrip_circuit build stimulus "acc_out" in
  Alcotest.(check (list int)) "sequential roundtrip (acc)" o1 o2;
  let o1', o2' = roundtrip_circuit build stimulus "delayed" in
  Alcotest.(check (list int)) "sequential roundtrip (delayed)" o1' o2'

let test_verilog_roundtrip_signed () =
  let build () =
    let c = Ir.create "signed_rt" in
    let a = Ir.input c "a" 5 and b = Ir.input c "b" 5 in
    Ir.output c "cmp" (Ir.concat (Ir.slt a b) (Ir.sle a b));
    Ir.output c "shift" (Ir.sra a 2);
    c
  in
  let st = Random.State.make [| 9 |] in
  let stimulus =
    List.init 12 (fun _ ->
        [ ("a", bv 5 (Random.State.int st 32));
          ("b", bv 5 (Random.State.int st 32)) ])
  in
  let o1, o2 = roundtrip_circuit build stimulus "cmp" in
  Alcotest.(check (list int)) "signed compares roundtrip" o1 o2;
  let o1', o2' = roundtrip_circuit build stimulus "shift" in
  Alcotest.(check (list int)) "arithmetic shift roundtrip" o1' o2'

let test_verilog_reader_errors () =
  let expect_fail text =
    match Rtl.Verilog_reader.parse_string text with
    | _ -> Alcotest.fail "expected Parse_error"
    | exception Rtl.Verilog_reader.Parse_error _ -> ()
  in
  expect_fail "not verilog";
  expect_fail
    "module m(o); output o; wire x; assign o = x; assign x = y; endmodule";
  expect_fail
    "module m(o); output o; wire w; assign o = w; assign w = w; endmodule"

(* A design roundtrip that then goes through A-QED: export the echo design,
   re-import, and check FC on the re-imported circuit. *)
let test_verilog_reimport_aqed () =
  let build () =
    let c = Ir.create "echo_rt" in
    let in_valid = Ir.input c "in_valid" 1 in
    let in_data = Ir.input c "in_data" 4 in
    let out_ready = Ir.input c "out_ready" 1 in
    let have = Ir.reg0 c "have" 1 in
    let value = Ir.reg0 c "value" 4 in
    let in_ready = Ir.lognot have in
    let in_fire = Ir.logand in_valid in_ready in
    let out_fire = Ir.logand have out_ready in
    Ir.connect c value (Ir.mux in_fire (Ir.add in_data (Ir.constant c ~width:4 1)) value);
    Ir.connect c have (Ir.mux in_fire (Ir.vdd c) (Ir.mux out_fire (Ir.gnd c) have));
    Ir.output c "in_ready" in_ready;
    Ir.output c "out_valid" have;
    Ir.output c "out_data" value;
    c
  in
  let text = Rtl.Verilog.to_string (build ()) in
  let rebuild () =
    let c = Rtl.Verilog_reader.parse_string text in
    let input name =
      match List.find_opt (fun s -> Ir.signal_name s = Some name) (Ir.inputs c) with
      | Some s -> s
      | None -> Alcotest.fail ("missing input " ^ name)
    in
    Aqed.Iface.make c
      ~in_valid:(input "in_valid") ~in_data:(input "in_data")
      ~in_ready:(Ir.find_output c "in_ready")
      ~out_valid:(Ir.find_output c "out_valid")
      ~out_data:(Ir.find_output c "out_data")
      ~out_ready:(input "out_ready") ()
  in
  let r = Aqed.Check.functional_consistency ~max_depth:8 rebuild in
  Alcotest.(check bool) "re-imported echo is FC-clean" false
    (Aqed.Check.found_bug r)

(* ---- post-silicon QED ---- *)

let test_post_silicon_clean () =
  let r =
    Aqed.Post_silicon.run ~seed:5 ~transactions:60
      (fun () -> Hls.Codegen.to_rtl Accel.Gsm.program)
  in
  Alcotest.(check bool) "no mismatch on clean design" true
    (r.Aqed.Post_silicon.mismatch = None);
  Alcotest.(check int) "all transactions ran" 60 r.Aqed.Post_silicon.transactions;
  Alcotest.(check bool) "duplicates exercised" true
    (r.Aqed.Post_silicon.duplicates_checked > 5)

let test_post_silicon_catches_stale_operand () =
  (* The stale-operand bug triggers under backpressure; the online FC check
     flags the replayed operand whose output changed. *)
  let r =
    Aqed.Post_silicon.run ~seed:5 ~transactions:300
      ~backpressure_probability:0.3
      (fun () ->
        Hls.Codegen.to_rtl ~bug:(Hls.Codegen.Stale_operand "x")
          Accel.Gsm.program)
  in
  match r.Aqed.Post_silicon.mismatch with
  | Some m ->
    Alcotest.(check bool) "outputs differ" true
      (m.Aqed.Post_silicon.first_output <> m.Aqed.Post_silicon.dup_output)
  | None -> Alcotest.fail "stale-operand bug not caught online"

let test_post_silicon_deterministic () =
  let run () =
    Aqed.Post_silicon.run ~seed:42 ~transactions:50
      (fun () -> Hls.Codegen.to_rtl Accel.Gsm.program)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same cycles" a.Aqed.Post_silicon.cycles
    b.Aqed.Post_silicon.cycles;
  Alcotest.(check int) "same duplicates" a.Aqed.Post_silicon.duplicates_checked
    b.Aqed.Post_silicon.duplicates_checked

let suite =
  ( "io",
    [
      Alcotest.test_case "aiger write format" `Quick test_aiger_write_format;
      Alcotest.test_case "aiger roundtrip" `Quick test_aiger_roundtrip;
      Alcotest.test_case "aiger parse errors" `Quick test_aiger_parse_errors;
      Alcotest.test_case "bmc aiger export" `Quick test_bmc_export;
      Alcotest.test_case "verilog writer" `Quick test_verilog_writer;
      Alcotest.test_case "verilog validates" `Quick test_verilog_validates;
      Alcotest.test_case "verilog name collision" `Quick test_verilog_name_collision;
      Alcotest.test_case "verilog roundtrip comb" `Quick test_verilog_roundtrip_comb;
      Alcotest.test_case "verilog roundtrip seq" `Quick test_verilog_roundtrip_seq;
      Alcotest.test_case "verilog roundtrip signed" `Quick test_verilog_roundtrip_signed;
      Alcotest.test_case "verilog reader errors" `Quick test_verilog_reader_errors;
      Alcotest.test_case "verilog reimport through A-QED" `Quick test_verilog_reimport_aqed;
      Alcotest.test_case "post-silicon clean" `Quick test_post_silicon_clean;
      Alcotest.test_case "post-silicon catches bug" `Quick test_post_silicon_catches_stale_operand;
      Alcotest.test_case "post-silicon deterministic" `Quick test_post_silicon_deterministic;
      QCheck_alcotest.to_alcotest prop_aiger_roundtrip_random;
    ] )
