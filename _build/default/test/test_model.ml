(* Tests for the executable formalization of Sec. III (Defs. 1–8 and
   Proposition 1) over small reference machines. *)

module M = Aqed.Model

(* The canonical well-behaved accelerator: one outstanding operation,
   1-step latency, output held until the host takes it.

   states: Idle | Out d  —  rdin holds only in Idle.
   In Idle, a valid input moves to Out (f d); in Out, the state clears when
   the host consumes the output (rdh). *)
type 'd echo_state = Idle | Out of 'd

let echo_machine f =
  {
    M.init = Idle;
    rdin = (fun s -> s = Idle);
    a_nop = 0;
    o_nop = None;
    trans =
      (fun s (a, d, rdh) ->
        match s with
        | Idle -> if a <> 0 then Out (f d) else Idle
        | Out v -> if rdh then Idle else Out v);
    out = (fun s -> match s with Idle -> None | Out v -> Some v);
  }

(* A machine with hidden-state interference: results are XORed with a
   parity bit that flips on every operation — the second occurrence of the
   same input yields a different output. *)
let parity_bug_machine () =
  {
    M.init = (Idle, false);
    rdin = (fun (s, _) -> s = Idle);
    a_nop = 0;
    o_nop = None;
    trans =
      (fun (s, par) (a, d, rdh) ->
        match s with
        | Idle -> if a <> 0 then (Out (if par then d + 100 else d), not par) else (Idle, par)
        | Out v -> if rdh then (Idle, par) else (Out v, par));
    out = (fun (s, _) -> match s with Idle -> None | Out v -> Some v);
  }

(* A machine that deadlocks after its second captured input: the output for
   input #2 never appears. *)
let deadlock_machine () =
  {
    M.init = (Idle, 0);
    rdin = (fun (s, _) -> s = Idle);
    a_nop = 0;
    o_nop = None;
    trans =
      (fun (s, n) (a, d, rdh) ->
        match s with
        | Idle ->
          if a <> 0 then if n >= 1 then (Out (-1), n + 1) else (Out d, n + 1)
          else (Idle, n)
        | Out v ->
          if v = -1 then (Out (-1), n)  (* stuck, never visible *)
          else if rdh then (Idle, n)
          else (Out v, n));
    out =
      (fun (s, _) ->
        match s with
        | Idle -> None
        | Out v -> if v = -1 then None else Some v);
  }

let actions = [ 0; 1 ]      (* 0 is the no-op *)
let data = [ 0; 1; 2 ]

let test_captured_sequences () =
  let m = echo_machine (fun d -> d * 10) in
  let ins =
    [ M.input 1 2;                (* captured; output appears next state *)
      M.input 0 0;                (* nop, host ready: output 20 captured *)
      M.input ~rdh:false 1 1;     (* captured input; no host ready *)
      M.input 0 0 ]               (* output 10 captured *)
  in
  Alcotest.(check (list (pair int int))) "captured inputs"
    [ (1, 2); (1, 1) ]
    (M.captured_inputs m ins);
  Alcotest.(check (list (option int))) "captured outputs"
    [ Some 20; Some 10 ]
    (M.captured_outputs m ins)

let test_nop_ignored () =
  let m = echo_machine (fun d -> d) in
  let ins = [ M.input 0 5; M.input 0 7 ] in
  Alcotest.(check int) "no captures" 0 (List.length (M.captured_inputs m ins))

let test_not_ready_not_captured () =
  let m = echo_machine (fun d -> d) in
  (* Input arrives while the machine is busy (not input-ready). *)
  let ins = [ M.input ~rdh:false 1 3; M.input ~rdh:false 1 9 ] in
  Alcotest.(check (list (pair int int))) "second input not captured"
    [ (1, 3) ] (M.captured_inputs m ins)

let test_fc_clean () =
  let m = echo_machine (fun d -> d + 7) in
  Alcotest.(check bool) "echo is functionally consistent" true
    (M.check_fc ~actions ~data ~depth:5 m = None)

let test_fc_bug_found () =
  let m = parity_bug_machine () in
  match M.check_fc ~actions ~data ~depth:6 m with
  | None -> Alcotest.fail "parity bug not found"
  | Some w ->
    Alcotest.(check bool) "orig before dup" true
      (w.M.index_orig < w.M.index_dup);
    (* The witness really is a violation: re-derive the sequences. *)
    let cin = M.captured_inputs m w.M.sequence in
    let cout = M.captured_outputs m w.M.sequence in
    Alcotest.(check bool) "same inputs" true
      (List.nth cin w.M.index_orig = List.nth cin w.M.index_dup);
    Alcotest.(check bool) "different outputs" true
      (List.nth cout w.M.index_orig <> List.nth cout w.M.index_dup)

let test_rb_clean () =
  let m = echo_machine (fun d -> d) in
  Alcotest.(check bool) "echo is responsive" true
    (M.check_rb ~actions ~data ~depth:5 ~bound:3 m = None)

let test_rb_deadlock_found () =
  let m = deadlock_machine () in
  match M.check_rb ~actions ~data ~depth:7 ~bound:3 m with
  | None -> Alcotest.fail "deadlock not found"
  | Some _ -> ()

let test_sac () =
  let f d = (2 * d) + 1 in
  let m = echo_machine f in
  Alcotest.(check bool) "correct spec passes" true
    (M.check_sac ~actions ~data ~flush:4 ~spec:(fun _ d -> Some (f d)) m = None);
  (match M.check_sac ~actions ~data ~flush:4 ~spec:(fun _ d -> Some d) m with
   | None -> Alcotest.fail "wrong spec should fail"
   | Some (_, d) -> Alcotest.(check bool) "witness data in alphabet" true (List.mem d data))

let test_total_correctness () =
  let f d = d * 3 in
  let m = echo_machine f in
  Alcotest.(check bool) "totally correct w.r.t. its own function" true
    (M.check_total ~actions ~data ~depth:5 ~spec:(fun _ d -> Some (f d)) m = None);
  (* The parity-bug machine is not. *)
  Alcotest.(check bool) "buggy machine fails" true
    (M.check_total ~actions ~data ~depth:6 ~spec:(fun _ d -> Some d)
       (parity_bug_machine ())
     <> None)

let test_strongly_connected () =
  Alcotest.(check bool) "echo machine is strongly connected" true
    (M.strongly_connected ~actions ~data (echo_machine (fun d -> d)));
  Alcotest.(check bool) "deadlock machine is not" false
    (M.strongly_connected ~actions ~data (deadlock_machine ()))

(* Proposition 1, on the family of echo machines with random operation
   tables: FC + RB + SAC + strong connectedness hold by construction, so
   bounded total correctness w.r.t. the table must hold too. *)
let prop_proposition1_echo =
  QCheck.Test.make ~name:"Proposition 1 on random echo machines" ~count:40
    QCheck.(array_of_size (QCheck.Gen.return 3) (int_bound 50))
    (fun table ->
      let f d = table.(d mod Array.length table) in
      let m = echo_machine f in
      let spec _ d = Some (f d) in
      M.check_fc ~actions ~data ~depth:4 m = None
      && M.check_rb ~actions ~data ~depth:4 ~bound:2 m = None
      && M.check_sac ~actions ~data ~flush:3 ~spec m = None
      && M.strongly_connected ~actions ~data m
      && M.check_total ~actions ~data ~depth:4 ~spec m = None)

(* The contrapositive side: machines with a random stateful twist either
   satisfy FC or check_total finds them wrong (w.r.t. their first-instance
   behaviour) — i.e. FC is never weaker than total correctness on
   consistent specs derived from the machine itself. *)
let prop_fc_necessary =
  QCheck.Test.make ~name:"FC violation implies total-correctness violation"
    ~count:30
    QCheck.(int_range 1 99)
    (fun salt ->
      let m =
        {
          M.init = (Idle, 0);
          rdin = (fun (s, _) -> s = Idle);
          a_nop = 0;
          o_nop = None;
          trans =
            (fun (s, k) (a, d, rdh) ->
              match s with
              | Idle ->
                if a <> 0 then (Out (d + (k * salt mod 7)), (k + 1) mod 3)
                else (Idle, k)
              | Out v -> if rdh then (Idle, k) else (Out v, k));
          out = (fun (s, _) -> match s with Idle -> None | Out v -> Some v);
        }
      in
      let spec _ d = Some d in
      match M.check_fc ~actions ~data ~depth:5 m with
      | None -> true
      | Some _ -> M.check_total ~actions ~data ~depth:5 ~spec m <> None)

let suite =
  ( "model",
    [
      Alcotest.test_case "captured sequences" `Quick test_captured_sequences;
      Alcotest.test_case "no-ops ignored" `Quick test_nop_ignored;
      Alcotest.test_case "not-ready inputs dropped" `Quick test_not_ready_not_captured;
      Alcotest.test_case "FC holds for echo" `Quick test_fc_clean;
      Alcotest.test_case "FC finds hidden-state bug" `Quick test_fc_bug_found;
      Alcotest.test_case "RB holds for echo" `Quick test_rb_clean;
      Alcotest.test_case "RB finds deadlock" `Quick test_rb_deadlock_found;
      Alcotest.test_case "SAC" `Quick test_sac;
      Alcotest.test_case "total correctness" `Quick test_total_correctness;
      Alcotest.test_case "strong connectedness" `Quick test_strongly_connected;
      QCheck_alcotest.to_alcotest prop_proposition1_echo;
      QCheck_alcotest.to_alcotest prop_fc_necessary;
    ] )
