(* Tests for the conventional simulation-based flow: the PRNG, detection of
   ordinary bugs, and the corner-case escapes that motivate A-QED. *)

module M = Accel.Memctrl
module C = Testbench.Conventional

let test_prng_deterministic () =
  let a = Testbench.Prng.create 42 in
  let b = Testbench.Prng.create 42 in
  let xs = List.init 10 (fun _ -> Testbench.Prng.next a) in
  let ys = List.init 10 (fun _ -> Testbench.Prng.next b) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Testbench.Prng.create 43 in
  let zs = List.init 10 (fun _ -> Testbench.Prng.next c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_prng_bounds () =
  let r = Testbench.Prng.create 7 in
  for _ = 1 to 200 do
    let v = Testbench.Prng.below r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.below: non-positive bound") (fun () ->
      ignore (Testbench.Prng.below r 0))

let suite_for cfg =
  C.standard_suite ~has_clock_enable:true ~data_width:(M.data_width cfg) ()

let campaign_on ?bug cfg =
  C.campaign
    ~build:(fun () -> M.build ?bug cfg ())
    ~golden:(M.golden cfg) (suite_for cfg)

let test_clean_design_passes () =
  let r = campaign_on M.Fifo_mode in
  (match r.C.detected with
   | None -> ()
   | Some d ->
     Alcotest.fail
       (Printf.sprintf "false positive in %s at %d: %s" d.C.test_name
          d.C.cycle d.C.reason));
  Alcotest.(check bool) "all tests ran" true (r.C.tests_run > 40)

let test_detects_ordinary_bug () =
  let r = campaign_on ~bug:M.Fifo_oversize_ready M.Fifo_mode in
  Alcotest.(check bool) "oversize-ready caught" true (r.C.detected <> None)

let test_detects_rb_bug_as_hang () =
  let r = campaign_on ~bug:M.Fifo_ready_stuck M.Fifo_mode in
  match r.C.detected with
  | None -> Alcotest.fail "ready-stuck not caught"
  | Some d ->
    Alcotest.(check bool) "reported as hang or missing outputs" true
      (d.C.reason = "hang: no handshake progress"
      || d.C.reason = "end of test with outputs missing")

let test_misses_corner_cases () =
  (* The paper's headline: clock-enable corner bugs escape the conventional
     flow (its application-style stimulus never pauses mid-stream). *)
  List.iter
    (fun bug ->
      let r = campaign_on ~bug M.Fifo_mode in
      Alcotest.(check bool)
        (M.bug_name bug ^ " escapes the conventional flow")
        true (r.C.detected = None))
    M.corner_case_bugs

let test_pause_stress_ablation () =
  (* With pause stress enabled the same flow does catch the clock-gate bug —
     the ablation showing the gap is stimulus, not the scoreboard. *)
  let tests =
    C.standard_suite ~has_clock_enable:true ~pause_stress:true
      ~data_width:(M.data_width M.Fifo_mode) ()
  in
  let r =
    C.campaign
      ~build:(fun () -> M.build ~bug:M.Fifo_clock_gate M.Fifo_mode ())
      ~golden:(M.golden M.Fifo_mode) tests
  in
  Alcotest.(check bool) "pause stress finds the clock-gate bug" true
    (r.C.detected <> None)

let test_detection_cycles_long () =
  (* Conventional detections happen hundreds of cycles in (Table 1 shape:
     much longer than BMC counterexamples). *)
  let r = campaign_on ~bug:M.Fifo_count_narrow M.Fifo_mode in
  match r.C.detected with
  | None -> Alcotest.fail "not caught"
  | Some d ->
    Alcotest.(check bool) "cycles > 0" true (d.C.cycle > 0);
    Alcotest.(check bool) "total cycles accumulated" true (r.C.total_cycles > 0)

let test_interfering_config_supported () =
  (* The accumulator (excluded from A-QED) is still verified by the
     conventional flow thanks to its stateful golden model. *)
  let r = campaign_on M.Accumulator in
  Alcotest.(check bool) "accumulator passes" true (r.C.detected = None)

let test_hls_designs_under_conventional () =
  (* The conventional flow also works on HLS designs using the interpreter
     as golden model. *)
  let golden ins = List.map Accel.Gsm.reference ins in
  let tests = C.standard_suite ~data_width:8 () in
  let clean =
    C.campaign ~build:(fun () -> Accel.Gsm.build ()) ~golden tests
  in
  Alcotest.(check bool) "gsm clean passes" true (clean.C.detected = None);
  let buggy =
    C.campaign ~build:(fun () -> Accel.Gsm.build ~bug:true ()) ~golden tests
  in
  Alcotest.(check bool) "gsm bug caught" true (buggy.C.detected <> None)

let suite =
  ( "testbench",
    [
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
      Alcotest.test_case "clean design passes" `Slow test_clean_design_passes;
      Alcotest.test_case "ordinary bug detected" `Quick test_detects_ordinary_bug;
      Alcotest.test_case "RB bug detected as hang" `Quick test_detects_rb_bug_as_hang;
      Alcotest.test_case "corner cases escape" `Slow test_misses_corner_cases;
      Alcotest.test_case "pause-stress ablation" `Quick test_pause_stress_ablation;
      Alcotest.test_case "detection cycles" `Quick test_detection_cycles_long;
      Alcotest.test_case "interfering config supported" `Slow test_interfering_config_supported;
      Alcotest.test_case "hls designs" `Slow test_hls_designs_under_conventional;
    ] )
