(* Command-line front end for the A-QED library. Lives in a library (Cli)
   so the test suite can drive the exact command surface through
   [run ~argv] and pin the exit-code contract; bin/aqed_cli.ml is the
   one-line executable wrapper.

     aqed_cli list                         enumerate designs and bugs
     aqed_cli check -d fifo -b fifo_clock_gate -c fc [-k 14] [-j 4]
     aqed_cli verify -d fifo [-b bug] [-j 4] [-p 2]   full flow, domain pool
     aqed_cli mutate -d fifo [--ops ...] [--seed N] [-j 4]   fault campaign
     aqed_cli sim -d aes -n 5              quick transaction-level run
     aqed_cli sat file.cnf                 solve a DIMACS instance
     aqed_cli store {stats,gc,verify} DIR  verdict-store maintenance
     aqed_cli serve --socket P [-j N]      verification service daemon
     aqed_cli submit --socket P -d aes     queue one job on a daemon
     aqed_cli status --socket P            one daemon status line

   Incremental re-verification (check, verify and mutate): --store DIR
   consults a persistent content-addressed verdict store before solving
   and writes certified results back. Unchanged obligations answer from
   revalidated entries (counterexample replay / RUP acceptance); changed
   ones — whose structural key differs — are the only re-solves.

   -j N on `check` races N diversified solver configurations (portfolio
   BMC); on `verify` it sizes the worker pool the FC/RB/SAC obligations are
   fanned across (-p additionally races a portfolio inside each obligation).

   Observability (check and verify): --trace FILE writes a Chrome
   trace_event JSON of solver/BMC/pool/check spans (load in Perfetto),
   --progress streams rate-limited progress lines to stderr during long
   solves, --stats prints per-check solver statistics and cache hit/miss
   counts after each report.

   Certification (check and verify): --certify cross-checks every verdict
   through an independent mechanism — counterexamples are replayed (and
   shrunk) on the cycle-accurate simulator, clean BMC frames are
   RUP-checked against the solver's proof log. A certified run exits 0
   whatever the verdict (the exit code then reports certification, and the
   report line carries the certificate); a divergence between the solver
   and the checker prints both sides and exits 2. *)

module M = Accel.Memctrl

type design = {
  name : string;
  description : string;
  bugs : string list;
  build : ?bug:string -> unit -> Aqed.Iface.t;
  build_rb : ?bug:string -> unit -> Aqed.Iface.t;
  tau : int;
  spec : (Rtl.Ir.signal -> Rtl.Ir.signal) option;
  shared : (Aqed.Iface.t -> Rtl.Ir.signal) option;
  golden_one : int -> int;   (* per-transaction reference for sim *)
  sim_extra : (string * int) list;
}

let memctrl_design cfg =
  let bugs =
    List.filter (fun b -> M.bug_config b = cfg) M.all_bugs
    |> List.map M.bug_name
  in
  let parse_bug = function
    | None -> None
    | Some name -> (
        match List.find_opt (fun b -> M.bug_name b = name) M.all_bugs with
        | Some b when M.bug_config b = cfg -> Some b
        | Some _ | None ->
          failwith (Printf.sprintf "no bug %s in configuration %s" name
                      (M.config_name cfg)))
  in
  {
    name = "memctrl-" ^ M.config_name cfg;
    description =
      Printf.sprintf "memory-controller unit, %s configuration"
        (M.config_name cfg);
    bugs;
    build = (fun ?bug () -> M.build ?bug:(parse_bug bug) cfg ());
    build_rb =
      (fun ?bug () -> M.build ?bug:(parse_bug bug) ~assume_enabled:true cfg ());
    tau = M.tau cfg;
    spec = Some (M.spec_rtl cfg);
    shared = None;
    golden_one =
      (fun d ->
        match M.golden cfg [ d ] with [ o ] -> o | _ -> 0);
    sim_extra = [ ("clock_enable", 1) ];
  }

let aes_design =
  let parse_bug = function
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some v when String.length s = 2 && s.[0] = 'v' && v >= 1 && v <= 4 ->
          Some v
        | Some _ | None -> failwith "AES bugs are v1, v2, v3, v4")
  in
  {
    name = "aes";
    description = "abstracted AES encryption (HLS flow, shared key)";
    bugs = [ "v1"; "v2"; "v3"; "v4" ];
    build = (fun ?bug () -> Accel.Aes.build ?version:(parse_bug bug) ());
    build_rb = (fun ?bug () -> Accel.Aes.build ?version:(parse_bug bug) ());
    tau = Accel.Aes.tau;
    spec = None;
    shared = Some Accel.Aes.shared_key;
    golden_one = (fun d -> Accel.Aes.reference ~block:d ~key:0);
    sim_extra = [ ("key", 0) ];
  }

let simple_design name description ~build ~tau ~golden_one =
  let parse_bug = function
    | None -> false
    | Some "bug" -> true
    | Some other -> failwith (Printf.sprintf "unknown bug %s (use: bug)" other)
  in
  {
    name;
    description;
    bugs = [ "bug" ];
    build = (fun ?bug () -> build ~bug:(parse_bug bug) ());
    build_rb = (fun ?bug () -> build ~bug:(parse_bug bug) ());
    tau;
    spec = None;
    shared = None;
    golden_one;
    sim_extra = [];
  }

let designs =
  [
    memctrl_design M.Fifo_mode;
    memctrl_design M.Double_buffer;
    memctrl_design M.Line_buffer;
    aes_design;
    simple_design "gsm" "abstracted GSM LPC kernel (HLS flow)"
      ~build:(fun ~bug () -> Accel.Gsm.build ~bug ())
      ~tau:Accel.Gsm.tau ~golden_one:Accel.Gsm.reference;
    simple_design "dataflow" "credit-based dataflow pipeline"
      ~build:(fun ~bug () -> Accel.Dataflow.build ~bug ())
      ~tau:Accel.Dataflow.tau ~golden_one:Accel.Dataflow.reference;
    simple_design "optflow" "optical-flow window gradient"
      ~build:(fun ~bug () -> Accel.Optflow.build ~bug ())
      ~tau:Accel.Optflow.tau ~golden_one:Accel.Optflow.reference;
    simple_design "simd" "2-lane batch accelerator (cross-lane bug)"
      ~build:(fun ~bug () -> Accel.Simd.build ~bug ())
      ~tau:Accel.Simd.tau ~golden_one:Accel.Simd.reference_batch;
    simple_design "fig2" "the paper's Fig. 2 motivating example"
      ~build:(fun ~bug () -> Accel.Fig2.build ~bug ())
      ~tau:8 ~golden_one:Accel.Fig2.f;
    simple_design "dualpath" "self-checking dual-datapath accelerator"
      ~build:(fun ~bug () -> Accel.Dualpath.build ~bug ())
      ~tau:Accel.Dualpath.tau ~golden_one:Accel.Dualpath.reference;
  ]

let find_design name =
  match List.find_opt (fun d -> d.name = name) designs with
  | Some d -> d
  | None ->
    failwith
      (Printf.sprintf "unknown design %s (see `aqed_cli list`)" name)

(* ---- commands ---- *)

let cmd_list () =
  print_endline "designs:";
  List.iter
    (fun d ->
      Printf.printf "  %-22s %s\n" d.name d.description;
      Printf.printf "  %-22s bugs: %s\n" "" (String.concat ", " d.bugs))
    designs;
  0

(* The argv the current [run] was invoked with, recorded so journal meta
   lines can carry the exact flags without threading argv through every
   cmdliner term. *)
let current_argv = ref [||]

let current_flags () =
  match Array.to_list !current_argv with
  | _prog :: _cmd :: rest -> rest
  | _ -> []

let git_rev () =
  match
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, rev -> rev
    | _ -> ""
  with
  | rev -> rev
  | exception _ -> ""

let journal_meta ~command ~design ~jobs ~seed ~fingerprint =
  {
    Report.Journal.created_s = Unix.gettimeofday ();
    command;
    design;
    git_rev = git_rev ();
    jobs;
    seed;
    flags = current_flags ();
    fingerprint;
  }

(* Telemetry wiring shared by check, verify and mutate: --trace enables
   span recording and exports the buffers on the way out, --progress
   installs a stderr reporter sampled from the CDCL loop and between BMC
   frames, --journal turns on the solver time-series sampler feeding the
   run ledger, and --stats prints the global metrics snapshot (counters
   plus histogram percentiles). The finish step runs on the failure path
   too, so a crashed or nonzero run still flushes its trace and metrics —
   exactly the runs worth diagnosing. *)
let with_telemetry ?(stats = false) ?(journal = None) ~trace ~progress f =
  if trace <> None then Telemetry.enable ();
  if journal <> None then Telemetry.Series.configure ();
  if progress then
    Telemetry.Progress.configure ~interval:0.5 (fun line ->
        Printf.eprintf "[aqed] %s\n%!" line);
  let finish () =
    if progress then Telemetry.Progress.disable ();
    Telemetry.Series.disable ();
    if stats then begin
      Format.eprintf "metrics:@.";
      (* store./cache. counters are the cache-effectiveness report; print
         them even at zero — on an all-hit run "store.misses 0" is the
         headline, and suppressing zero-delta counters hid it. *)
      let prefixed p name =
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p
      in
      let always name = prefixed "store." name || prefixed "cache." name in
      List.iter
        (fun (name, v) ->
          match v with
          | Telemetry.Counter n | Telemetry.Gauge n ->
            if n <> 0 || always name then Format.eprintf "  %-28s %d@." name n
          | Telemetry.Histogram h ->
            if h.Telemetry.count > 0 then
              Format.eprintf "  %-28s %a@." name
                Telemetry.pp_histogram_snapshot h)
        (Telemetry.metrics ())
    end;
    match trace with
    | None -> ()
    | Some path ->
      Telemetry.disable ();
      Telemetry.export_file path;
      Printf.eprintf
        "trace: %d events written to %s (load in Perfetto or chrome://tracing)\n%!"
        (Telemetry.nb_events ()) path
  in
  match f () with
  | v -> finish (); v
  | exception e -> finish (); raise e

(* Solver-side speed knobs (--restarts, --no-inprocess). Every
   configuration returns the same verdict at the same depth, so these only
   move wall time. *)
let solver_config restarts no_inprocess =
  { Bmc.Engine.default_config with
    restarts; inprocess = not no_inprocess }

(* The design identity journals join on: the clean design and each injected
   bug are distinct obligations. *)
let design_label d bug =
  match bug with None -> d.name | Some b -> d.name ^ "+" ^ b

(* The cache-relevant config fingerprint recorded in every journal meta
   line (store or no store), so [report --compare] can refuse to compare
   wall times across configurations. Store-mediated solves force
   certification, hence the [certify || store] term. *)
let config_fp ~reduce ~sweep ~certify ~solver ~store =
  Store.config_fingerprint ~reduce ~sweep
    ~certify:(certify || store <> None)
    ~solver_label:(Bmc.Engine.config_label solver)

(* One deterministic line of store traffic after a --store run. The
   counters are process-global and a CLI process runs one command, so they
   are exactly this run's traffic. *)
let store_summary () =
  let get name = Telemetry.Counter.get (Telemetry.Counter.make name) in
  Printf.printf
    "store: %d hits (%d revalidated, %d warm starts), %d misses, %d \
     invalid, %d writes\n"
    (get "store.hits") (get "store.revalidated") (get "store.warm_starts")
    (get "store.misses") (get "store.invalid") (get "store.writes")

let cmd_check design_name bug check depth jobs stats no_reduce sweep certify
    restarts no_inprocess journal store_dir =
  let d = find_design design_name in
  let portfolio = max 1 jobs in
  let reduce = not no_reduce in
  let solver = solver_config restarts no_inprocess in
  let store = Option.map Store.open_store store_dir in
  let report =
    match String.lowercase_ascii check with
    | "fc" ->
      Aqed.Check.functional_consistency ~max_depth:depth ?shared:d.shared
        ~portfolio ~certify ~solver ?store ~reduce ~sweep
        (fun () -> d.build ?bug ())
    | "rb" ->
      Aqed.Check.response_bound ~max_depth:depth ~tau:d.tau ~portfolio
        ~certify ~solver ?store ~reduce ~sweep
        (fun () -> d.build_rb ?bug ())
    | "sac" -> (
        match d.spec with
        | Some spec ->
          Aqed.Check.single_action ~max_depth:depth ~spec ~portfolio ~certify
            ~solver ?store ~reduce ~sweep
            (fun () -> d.build ?bug ())
        | None -> failwith "this design has no registered SAC spec")
    | other -> failwith (Printf.sprintf "unknown check %s (fc|rb|sac)" other)
  in
  Format.printf "%a@." Aqed.Check.pp_report report;
  if stats then begin
    Format.printf "  solver: %a@." Sat.Solver.pp_stats
      report.Aqed.Check.solver_stats;
    match report.Aqed.Check.reduce_stats with
    | None -> ()
    | Some s ->
      Format.printf
        "  reduce: nodes %d -> %d, latches %d -> %d (coi -%d, const %d), \
         sweep %d/%d merged (%d classes, %d limited)@."
        s.Logic.Reduce.nodes_before s.Logic.Reduce.nodes_after
        s.Logic.Reduce.latches_before s.Logic.Reduce.latches_after
        s.Logic.Reduce.coi_dropped_latches s.Logic.Reduce.const_latches
        s.Logic.Reduce.sweep_merged s.Logic.Reduce.sweep_queries
        s.Logic.Reduce.sweep_classes s.Logic.Reduce.sweep_limited
  end;
  (match report.Aqed.Check.verdict with
   | Aqed.Check.Bug t -> Format.printf "%a@." Bmc.Trace.pp t
   | Aqed.Check.No_bug_up_to _ | Aqed.Check.Proved _ -> ());
  if store <> None then store_summary ();
  (match journal with
   | None -> ()
   | Some path ->
     let design = design_label d bug in
     let fingerprint = config_fp ~reduce ~sweep ~certify ~solver ~store in
     Report.Journal.append path
       [ Report.Journal.Meta
           (journal_meta ~command:"check" ~design ~jobs ~seed:0 ~fingerprint);
         Report.Journal.Obligation (Report.Journal.of_report ~design report)
       ]);
  (* With --certify the exit code reports certification (a confirmed bug
     is a success; a divergence raised before reaching here and exits 2). *)
  if Aqed.Check.found_bug report && not certify then 1 else 0

(* The full flow as a batch: FC, RB and (when a spec is registered) SAC as
   independent obligations fanned across the domain pool, with the
   obligation cache deduplicating structurally identical instances. Unlike
   [Check.verify] this does not stop at the first bug — all checks run. *)
let cmd_verify design_name bug depth jobs portfolio stats no_reduce sweep
    certify restarts no_inprocess journal store_dir =
  let d = find_design design_name in
  let reduce = not no_reduce in
  let solver = solver_config restarts no_inprocess in
  let store = Option.map Store.open_store store_dir in
  let obligations =
    [
      Aqed.Check.prepare_fc ~max_depth:depth ?shared:d.shared ~reduce ~sweep
        (fun () -> d.build ?bug ());
      Aqed.Check.prepare_rb ~max_depth:depth ~tau:d.tau ~reduce ~sweep
        (fun () -> d.build_rb ?bug ());
    ]
    @ (match d.spec with
       | Some spec ->
         [ Aqed.Check.prepare_sac ~max_depth:depth ~spec ~reduce ~sweep
             (fun () -> d.build ?bug ()) ]
       | None -> [])
  in
  let cache = Aqed.Check.create_cache () in
  let batch =
    Aqed.Check.run_batch ~jobs:(max 1 jobs) ~cache
      ~portfolio:(max 1 portfolio) ~certify ~solver ?store obligations
  in
  Format.printf "%a@." Aqed.Check.pp_batch batch;
  if stats then begin
    List.iter
      (fun (e : Aqed.Check.batch_entry) ->
        Format.printf "  %-28s %a@." e.Aqed.Check.entry_name
          Sat.Solver.pp_stats
          e.Aqed.Check.entry_report.Aqed.Check.solver_stats)
      batch.Aqed.Check.entries;
    let cs = Aqed.Check.cache_stats cache in
    Format.printf "  cache: %d hits / %d misses / %d entries (%.0f%% hit rate)@."
      cs.Parallel.Cache.hits cs.Parallel.Cache.misses cs.Parallel.Cache.entries
      (100. *. Aqed.Check.cache_hit_rate cache)
  end;
  let reports = Aqed.Check.batch_reports batch in
  List.iter
    (fun r ->
      match r.Aqed.Check.verdict with
      | Aqed.Check.Bug t -> Format.printf "%a@." Bmc.Trace.pp t
      | Aqed.Check.No_bug_up_to _ | Aqed.Check.Proved _ -> ())
    reports;
  if store <> None then store_summary ();
  (match journal with
   | None -> ()
   | Some path ->
     let design = design_label d bug in
     let fingerprint = config_fp ~reduce ~sweep ~certify ~solver ~store in
     Report.Journal.append path
       (Report.Journal.Meta
          (journal_meta ~command:"verify" ~design ~jobs ~seed:0 ~fingerprint)
        :: List.map
             (fun o -> Report.Journal.Obligation o)
             (Report.Journal.of_batch ~design batch)));
  if List.exists Aqed.Check.found_bug reports && not certify then 1 else 0

(* The mutation campaign runs on the clean design (no -b): injected faults
   replace the hand-written bug registry. Exit code 0 means every checked
   mutant was killed; 1 means survivors exist (verification gaps — their
   mutation sites are listed); 2 is an error. *)
let cmd_mutate design_name ops seed limit budget depth jobs journal store_dir
    =
  let d = find_design design_name in
  let store = Option.map Store.open_store store_dir in
  let ops =
    match ops with
    | [] -> Mutate.all_ops
    | names ->
      List.map
        (fun n ->
          match Mutate.op_of_name n with
          | Some op -> op
          | None ->
            failwith
              (Printf.sprintf "unknown mutation operator %s (use: %s)" n
                 (String.concat ", " (List.map Mutate.op_name Mutate.all_ops))))
        names
  in
  let target =
    {
      Mutate.target_name = d.name;
      build = (fun () -> d.build ());
      build_rb = (fun () -> d.build_rb ());
      tau = d.tau;
      spec = d.spec;
      shared = d.shared;
    }
  in
  let campaign =
    Mutate.run ~ops ~seed ~limit ~budget ~max_depth:depth ~jobs:(max 1 jobs)
      ?store target
  in
  Format.printf "%a@." Mutate.pp_campaign campaign;
  if store <> None then store_summary ();
  (match journal with
   | None -> ()
   | Some path ->
     let fingerprint =
       (* mutate runs the checks with their defaults: reduction on, sweep
          off, the default solver config. *)
       config_fp ~reduce:true ~sweep:false ~certify:false
         ~solver:Bmc.Engine.default_config ~store
     in
     Report.Journal.append path
       (Report.Journal.Meta
          (journal_meta ~command:"mutate" ~design:d.name ~jobs ~seed
             ~fingerprint)
        :: List.map
             (fun m -> Report.Journal.Mutant m)
             (Report.Journal.of_campaign ~design:d.name campaign)));
  if Mutate.survivors campaign = [] then 0 else 1

let cmd_sim design_name bug count =
  let d = find_design design_name in
  let iface = d.build ?bug () in
  let h = Aqed.Harness.create iface in
  List.iter
    (fun (n, v) ->
      try Rtl.Sim.set_input_int (Aqed.Harness.sim h) n v
      with Not_found -> ())
    d.sim_extra;
  let w = Rtl.Ir.width iface.Aqed.Iface.in_data in
  let rng = Testbench.Prng.create 99 in
  let inputs =
    List.init count (fun _ -> Testbench.Prng.below rng (1 lsl min w 20))
  in
  let outs =
    Aqed.Harness.run h (List.map (fun v -> Aqed.Harness.txn v) inputs)
  in
  let ok = ref true in
  List.iteri
    (fun i input ->
      let got = List.nth_opt outs i in
      let want = d.golden_one input in
      let mark =
        match got with
        | Some g when g = want -> "ok"
        | Some _ -> ok := false; "MISMATCH"
        | None -> ok := false; "MISSING"
      in
      Printf.printf "  in=%-6d out=%-8s golden=%-6d %s\n" input
        (match got with Some g -> string_of_int g | None -> "-")
        want mark)
    inputs;
  if !ok then 0 else 1

(* Render one or more journals into a self-contained HTML dashboard and/or
   a plain-text summary, or (--compare) diff two journals for regressions.
   Compare exit codes: 0 clean, 1 soft (time regression beyond the factor),
   2 hard (verdict/depth divergence or a mutant kill regression). *)
let cmd_report paths output summary compare time_factor min_seconds =
  if compare then begin
    match paths with
    | [ a; b ] ->
      let ja = Report.Journal.load a and jb = Report.Journal.load b in
      let r = Report.Compare.run ~time_factor ~min_seconds ja jb in
      Format.printf "%a" Report.Compare.pp r;
      Report.Compare.exit_code r
    | _ -> failwith "report --compare takes exactly two journal files"
  end
  else begin
    if paths = [] then failwith "report: no journal files given";
    let journals = List.map Report.Journal.load paths in
    (match output with
     | Some path ->
       let html = Report.Html.render journals in
       let oc = open_out path in
       output_string oc html;
       close_out oc;
       Printf.eprintf "report: wrote %s (%d bytes)\n%!" path
         (String.length html)
     | None -> ());
    if summary || output = None then
      print_string (Report.Html.summary journals);
    0
  end

(* Maintenance on a persistent verdict store directory. [store verify] is
   codec-level: every entry must parse and checksum; certificate
   revalidation (replay / RUP acceptance) needs the design and happens at
   lookup time in the checks. *)
let cmd_store_stats dir =
  let s = Store.stats (Store.open_store dir) in
  Printf.printf "store %s: %d entries, %d bytes\n" dir s.Store.n_entries
    s.Store.n_bytes;
  0

let cmd_store_gc dir max_bytes max_entries =
  if max_bytes = None && max_entries = None then
    failwith "store gc: give --max-bytes and/or --max-entries";
  let r = Store.gc ?max_bytes ?max_entries (Store.open_store dir) in
  Printf.printf "store %s: kept %d, removed %d, %d bytes, %d tmp orphans\n"
    dir r.Store.gc_kept r.Store.gc_removed r.Store.gc_bytes
    r.Store.gc_tmp_removed;
  0

let cmd_store_verify dir =
  let items = Store.scan (Store.open_store dir) in
  let bad = ref 0 in
  List.iter
    (fun (i : Store.scan_item) ->
      match i.Store.s_entry with
      | Ok e ->
        Printf.printf "  ok   %s %s %s\n" i.Store.s_file e.Store.e_check
          (match e.Store.e_verdict with
           | Store.Bug t -> Printf.sprintf "bug@%d" (Bmc.Trace.length t)
           | Store.Clean d -> Printf.sprintf "clean@%d" d)
      | Error reason ->
        incr bad;
        Printf.printf "  BAD  %s: %s\n" i.Store.s_file reason)
    items;
  Printf.printf "store %s: %d entries, %d invalid\n" dir (List.length items)
    !bad;
  if !bad = 0 then 0 else 1

(* ---- verification service (serve / submit / status) ---- *)

(* The daemon-side job resolver: maps a wire job spec onto the design
   registry, producing the journal design label and a prepared-able
   obligation. Every failure is an [Error] that becomes a typed error
   frame for the submitting client — never an exception in the daemon. *)
let resolve_job (spec : Serve.job_spec) =
  match
    let d = find_design spec.Serve.sj_design in
    let bug = spec.Serve.sj_bug in
    let depth = spec.Serve.sj_depth in
    let ob =
      match String.lowercase_ascii spec.Serve.sj_check with
      | "fc" ->
        Aqed.Check.prepare_fc ~max_depth:depth ?shared:d.shared
          (fun () -> d.build ?bug ())
      | "rb" ->
        Aqed.Check.prepare_rb ~max_depth:depth ~tau:d.tau
          (fun () -> d.build_rb ?bug ())
      | "sac" -> (
          match d.spec with
          | Some spec_fn ->
            Aqed.Check.prepare_sac ~max_depth:depth ~spec:spec_fn
              (fun () -> d.build ?bug ())
          | None -> failwith "this design has no registered SAC spec")
      | other ->
        failwith (Printf.sprintf "unknown check %s (fc|rb|sac)" other)
    in
    (* Validate the bug name now, on the daemon's request path, so a typo
       is a typed rejection instead of a solve-time failure on a worker. *)
    ignore (d.build ?bug ());
    (design_label d bug, ob)
  with
  | v -> Ok v
  | exception Failure m -> Error m

let cmd_serve socket store_dir jobs capacity timeout idle journal =
  let store = Option.map Store.open_store store_dir in
  let journal =
    Option.map
      (fun path ->
        let fingerprint =
          config_fp ~reduce:true ~sweep:false ~certify:false
            ~solver:Bmc.Engine.default_config ~store
        in
        ( path,
          journal_meta ~command:"serve" ~design:"serve" ~jobs ~seed:0
            ~fingerprint ))
      journal
  in
  let cfg =
    Serve.config ?store ~workers:(max 1 jobs) ~capacity
      ~job_timeout_s:timeout ~idle_timeout_s:idle ?journal
      ~resolve:resolve_job socket
  in
  let srv = Serve.start cfg in
  let drain _ = Serve.stop srv in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
  Printf.eprintf "serve: listening on %s (%d workers, capacity %d)\n%!"
    socket cfg.Serve.workers cfg.Serve.capacity;
  let s = Serve.wait srv in
  Printf.printf
    "serve: drained — %d accepted, %d completed, %d timeouts, %d rejected, \
     %d errors\n"
    s.Serve.sm_accepted s.Serve.sm_completed s.Serve.sm_timeouts
    s.Serve.sm_rejected s.Serve.sm_errors;
  0

let connect_client socket =
  try Serve.Client.connect socket
  with Unix.Unix_error (e, _, _) ->
    failwith
      (Printf.sprintf "cannot connect to %s: %s" socket
         (Unix.error_message e))

let cmd_submit socket design bug check depth certify timeout =
  let c = connect_client socket in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  let spec =
    Serve.job_spec ?bug ~check ~depth ~certify ?timeout_s:timeout design
  in
  match Serve.Client.submit c spec with
  | Serve.Client.Completed (job, wall, o) ->
    Printf.printf "job %d: %s/%s %s %s@%d%s (%.3fs server wall)%s\n" job
      o.Report.Journal.ob_design o.Report.Journal.ob_name
      o.Report.Journal.ob_check o.Report.Journal.ob_verdict
      o.Report.Journal.ob_depth
      (if o.Report.Journal.ob_certificate = "none" then ""
       else " [" ^ o.Report.Journal.ob_certificate ^ "]")
      wall
      (if o.Report.Journal.ob_cached then " (cached)" else "");
    if o.Report.Journal.ob_verdict = "bug" && not certify then 1 else 0
  | Serve.Client.Timed_out (job, wall) ->
    Printf.eprintf "job %d: TIMEOUT after %.3fs\n" job wall;
    2
  | Serve.Client.Busy (active, capacity) ->
    Printf.eprintf "busy: %d/%d jobs in flight, retry later\n" active
      capacity;
    2
  | Serve.Client.Refused msg -> failwith msg

let cmd_status socket =
  let c = connect_client socket in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  let j = Serve.Client.status c in
  let i k = Report.Json.int_or 0 (Report.Json.member k j) in
  Printf.printf
    "serve %s: %d active (%d queued) of %d capacity; %d accepted, %d \
     completed, %d timeouts, %d rejected, %d errors%s\n"
    socket (i "active") (i "queued") (i "capacity") (i "accepted")
    (i "completed") (i "timeouts") (i "rejected") (i "errors")
    (if Report.Json.bool_or false (Report.Json.member "draining" j) then
       " (draining)"
     else "");
  0

let cmd_sat certify path =
  let cnf = Sat.Dimacs.parse_file path in
  let t0 = Unix.gettimeofday () in
  (* Post-parse cleanup: the same subsumption sweep the reduction pipeline
     uses. Equivalence-preserving, so the model below also satisfies the
     original formula (and --certify re-solves the original anyway). *)
  let cleaned = Sat.Simplify.subsume cnf.Sat.Dimacs.clauses in
  let n_before = List.length cnf.Sat.Dimacs.clauses in
  let n_after = List.length cleaned in
  if n_after < n_before then
    Printf.printf "c subsume: %d -> %d clauses\n" n_before n_after;
  let cnf' = { cnf with Sat.Dimacs.clauses = cleaned } in
  let result, model = Sat.Dimacs.solve cnf' in
  (match result with
   | Sat.Solver.Sat ->
     print_endline "s SATISFIABLE";
     let b = Buffer.create 256 in
     Buffer.add_string b "v ";
     for v = 1 to cnf.Sat.Dimacs.nvars do
       Buffer.add_string b (string_of_int (if model.(v) then v else -v));
       Buffer.add_char b ' '
     done;
     Buffer.add_char b '0';
     print_endline (Buffer.contents b)
   | Sat.Solver.Unsat ->
     print_endline "s UNSATISFIABLE";
     if certify then begin
       match Sat.Rup.check_solver_run cnf with
       | Sat.Rup.Valid -> print_endline "c proof: VALID (RUP-checked)"
       | Sat.Rup.Invalid i -> Printf.printf "c proof: INVALID at step %d\n" i
       | Sat.Rup.Incomplete -> print_endline "c proof: incomplete"
     end);
  Printf.printf "c %.3fs\n" (Unix.gettimeofday () -. t0);
  0

(* ---- cmdliner wiring ---- *)

open Cmdliner

let design_arg =
  Arg.(required & opt (some string) None & info [ "d"; "design" ] ~doc:"Design name (see list).")

let bug_arg =
  Arg.(value & opt (some string) None & info [ "b"; "bug" ] ~doc:"Bug to inject (see list).")

let depth_arg =
  Arg.(value & opt int 14 & info [ "k"; "depth" ] ~doc:"BMC bound (frames).")

let check_arg =
  Arg.(value & opt string "fc" & info [ "c"; "check" ] ~doc:"Check: fc, rb or sac.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ]
           ~doc:"Parallelism: portfolio width for check, pool workers for verify.")

let portfolio_arg =
  Arg.(value & opt int 1
       & info [ "p"; "portfolio" ]
           ~doc:"Race N diversified solver configurations inside each \
                 obligation (portfolio BMC), on top of the -j worker pool.")

let count_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~doc:"Number of random transactions.")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print solver statistics (and cache hit/miss counts for \
                 verify) after each report.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace_event JSON of solver, BMC, pool and \
                 check spans to $(docv) (load in Perfetto).")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Stream rate-limited progress lines (conflicts/sec, current \
                 BMC frame) to stderr during long solves.")

let no_reduce_arg =
  Arg.(value & flag
       & info [ "no-reduce" ]
           ~doc:"Skip the structural reduction pipeline (COI, constant \
                 propagation, SAT sweeping) and encode the raw bit-blasted \
                 relation. Verdicts and counterexample depths are identical \
                 either way; this is the A/B escape hatch.")

let sweep_arg =
  Arg.(value & flag
       & info [ "sweep" ]
           ~doc:"Enable SAT sweeping (fraiging) inside the reduction \
                 pipeline. Equivalence-preserving, but the few proven merges \
                 can perturb the solver enough to cost more than they save \
                 on some obligations, so it is off by default. Ignored with \
                 $(b,--no-reduce).")

let restarts_arg =
  let styles =
    [ ("luby", Sat.Solver.Luby); ("ema", Sat.Solver.Ema) ]
  in
  Arg.(value & opt (enum styles) Sat.Solver.Luby
       & info [ "restarts" ] ~docv:"STYLE"
           ~doc:"Restart strategy: $(b,luby) (budgeted, the default) or \
                 $(b,ema) (Glucose-style dynamic restarts driven by \
                 learned-clause glue). A speed knob only — every strategy \
                 returns the same verdict at the same depth.")

let no_inprocess_arg =
  Arg.(value & flag
       & info [ "no-inprocess" ]
           ~doc:"Skip between-frame inprocessing (budgeted clause \
                 vivification and root-level database simplification). \
                 Verdicts and counterexample depths are identical either \
                 way; this is the solver-side A/B escape hatch.")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Append one JSONL record per solved obligation (or mutant) \
                 to $(docv): verdict, certificate, reduce and solver \
                 statistics, sampled solver time-series, and run metadata \
                 (git rev, jobs, flags). Render or diff the ledger with \
                 $(b,aqed_cli report).")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Persistent verdict store: consult $(docv) before solving \
                 and write certified results back. Hits are revalidated \
                 (counterexample replay / RUP acceptance) before being \
                 trusted; corrupted or stale entries degrade to a re-solve. \
                 Implies certification of store-mediated verdicts. Maintain \
                 the directory with $(b,aqed_cli store).")

let certify_arg =
  Arg.(value & flag
       & info [ "certify" ]
           ~doc:"Cross-check every verdict: replay (and shrink) \
                 counterexamples on the cycle-accurate simulator, RUP-check \
                 each clean BMC frame against the solver's proof log. The \
                 exit code then reports certification — 0 whatever the \
                 verdict, 2 on any divergence between solver and checker \
                 (both sides are printed).")

let wrap f =
  try f () with
  | Failure msg -> prerr_endline ("error: " ^ msg); 2
  | Bmc.Engine.Certification_failed msg ->
    prerr_endline ("certification FAILED: " ^ msg);
    2

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List designs and their injectable bugs")
    Term.(const (fun () -> wrap cmd_list) $ const ())

let check_cmd =
  let run d b c k j stats trace progress no_reduce sweep certify restarts
      no_inprocess journal store =
    wrap (fun () ->
        with_telemetry ~stats ~journal ~trace ~progress (fun () ->
            cmd_check d b c k j stats no_reduce sweep certify restarts
              no_inprocess journal store))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run an A-QED check (exit code 1 when a bug is found; with \
             $(b,--certify), 0 on a certified verdict and 2 on divergence)")
    Term.(const run $ design_arg $ bug_arg $ check_arg $ depth_arg $ jobs_arg
          $ stats_arg $ trace_arg $ progress_arg $ no_reduce_arg $ sweep_arg
          $ certify_arg $ restarts_arg $ no_inprocess_arg $ journal_arg
          $ store_arg)

let verify_cmd =
  let run d b k j p stats trace progress no_reduce sweep certify restarts
      no_inprocess journal store =
    wrap (fun () ->
        with_telemetry ~stats ~journal ~trace ~progress (fun () ->
            cmd_verify d b k j p stats no_reduce sweep certify restarts
              no_inprocess journal store))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the full A-QED flow (FC, RB, SAC) on the parallel batch \
             driver (exit code 1 when any check finds a bug; with \
             $(b,--certify), 0 on certified verdicts and 2 on divergence)")
    Term.(const run $ design_arg $ bug_arg $ depth_arg $ jobs_arg
          $ portfolio_arg $ stats_arg $ trace_arg $ progress_arg
          $ no_reduce_arg $ sweep_arg $ certify_arg $ restarts_arg
          $ no_inprocess_arg $ journal_arg $ store_arg)

let mutate_cmd =
  let ops_arg =
    Arg.(value & opt (list string) []
         & info [ "ops" ] ~docv:"OPS"
             ~doc:"Comma-separated mutation operators to enable (default \
                   all): binop, operand, const, stuck, mux, reset, offby1.")
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~doc:"Sampling seed; the same (design, ops, seed, \
                                 limit) always names the same mutants.")
  in
  let limit_arg =
    Arg.(value & opt int 64
         & info [ "limit" ] ~doc:"Maximum mutants to draw from the candidate \
                                  space.")
  in
  let budget_arg =
    Arg.(value & opt int 2000
         & info [ "budget" ]
             ~doc:"Conflict budget for the equivalence-screen miter; \
                   inconclusive miters keep the mutant.")
  in
  let run d ops seed limit budget k j trace progress journal store =
    wrap (fun () ->
        with_telemetry ~journal ~trace ~progress (fun () ->
            cmd_mutate d ops seed limit budget k j journal store))
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:"Run a mutation fault-injection campaign: generate semantic \
             faults, screen out provably-equivalent mutants, and run the \
             FC/RB/SAC flow on the rest (exit code 1 when any mutant \
             survives every check)")
    Term.(const run $ design_arg $ ops_arg $ seed_arg $ limit_arg $ budget_arg
          $ depth_arg $ jobs_arg $ trace_arg $ progress_arg $ journal_arg
          $ store_arg)

let sim_cmd =
  let run d b n = wrap (fun () -> cmd_sim d b n) in
  Cmd.v
    (Cmd.info "sim" ~doc:"Simulate random transactions against the golden model")
    Term.(const run $ design_arg $ bug_arg $ count_arg)

let report_cmd =
  let paths =
    Arg.(value & pos_all file [] & info [] ~docv:"JOURNAL"
         ~doc:"Journal files written by $(b,--journal).")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write a self-contained HTML dashboard (per-obligation \
                   cost breakdown, solver time-series sparklines, mutation \
                   kill tables; no scripts, no external references) to \
                   $(docv).")
  in
  let summary =
    Arg.(value & flag
         & info [ "summary" ]
             ~doc:"Print the plain-text summary to stdout (the default when \
                   no $(b,-o) is given).")
  in
  let compare =
    Arg.(value & flag
         & info [ "compare" ]
             ~doc:"Diff two journals per obligation key instead of \
                   rendering: exit 0 when clean, 1 on a wall-time \
                   regression beyond $(b,--time-factor), 2 on a verdict or \
                   depth divergence (or a mutant that was killed before \
                   and now survives).")
  in
  let time_factor =
    Arg.(value & opt float 1.5
         & info [ "time-factor" ] ~docv:"F"
             ~doc:"Wall-time regression threshold for $(b,--compare): flag \
                   an obligation only when the new time exceeds $(docv) \
                   times the old.")
  in
  let min_seconds =
    Arg.(value & opt float 0.05
         & info [ "min-seconds" ] ~docv:"S"
             ~doc:"Noise floor for $(b,--compare): obligations faster than \
                   $(docv) seconds on either side never flag a time \
                   regression.")
  in
  let run paths output summary compare time_factor min_seconds =
    wrap (fun () ->
        cmd_report paths output summary compare time_factor min_seconds)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render verification run journals into a self-contained HTML \
             dashboard or a text summary, or ($(b,--compare)) detect \
             regressions between two journals")
    Term.(const run $ paths $ output $ summary $ compare $ time_factor
          $ min_seconds)

let store_cmd =
  let dir_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"Verdict store directory.")
  in
  let stats_c =
    Cmd.v
      (Cmd.info "stats" ~doc:"Print entry count and on-disk size")
      Term.(const (fun d -> wrap (fun () -> cmd_store_stats d)) $ dir_pos)
  in
  let gc_c =
    let max_bytes =
      Arg.(value & opt (some int) None
           & info [ "max-bytes" ] ~docv:"N"
               ~doc:"Remove oldest entries until the store holds at most \
                     $(docv) bytes.")
    in
    let max_entries =
      Arg.(value & opt (some int) None
           & info [ "max-entries" ] ~docv:"N"
               ~doc:"Remove oldest entries until the store holds at most \
                     $(docv) entries.")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Size-bounded collection: drop oldest entries until the \
               store fits the given bounds")
      Term.(const (fun d b e -> wrap (fun () -> cmd_store_gc d b e))
            $ dir_pos $ max_bytes $ max_entries)
  in
  let verify_c =
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Parse and checksum every entry (exit 1 when any is \
               invalid); certificate revalidation happens at lookup time \
               in the checks, this is the codec-level audit")
      Term.(const (fun d -> wrap (fun () -> cmd_store_verify d)) $ dir_pos)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain a persistent verdict store directory")
    [ stats_c; gc_c; verify_c ]

let sat_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cnf") in
  let certify =
    Arg.(value & flag & info [ "certify" ] ~doc:"Re-solve with proof logging and RUP-check the UNSAT certificate.")
  in
  Cmd.v (Cmd.info "sat" ~doc:"Solve a DIMACS CNF with the built-in CDCL solver")
    Term.(const (fun cert p -> wrap (fun () -> cmd_sat cert p)) $ certify $ path)

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path of the verification service.")

let serve_cmd =
  let capacity =
    Arg.(value & opt int 32
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Maximum accepted-but-unfinished jobs; submits beyond it \
                   get a typed busy reply instead of queueing without \
                   bound.")
  in
  let timeout =
    Arg.(value & opt float 300.
         & info [ "timeout" ] ~docv:"S"
             ~doc:"Default per-job wall-clock deadline in seconds; a job \
                   that exceeds it is cooperatively cancelled and answered \
                   with a typed timeout frame (the worker pool survives).")
  in
  let idle =
    Arg.(value & opt float 30.
         & info [ "idle-timeout" ] ~docv:"S"
             ~doc:"Close a connection after $(docv) seconds without a \
                   request.")
  in
  let run socket store jobs capacity timeout idle journal =
    wrap (fun () ->
        cmd_serve socket store jobs capacity timeout idle journal)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the verification service daemon: accept jobs over a \
             Unix-domain socket, solve them on a shared worker pool (and \
             shared verdict store with $(b,--store)), drain gracefully on \
             SIGTERM/SIGINT")
    Term.(const run $ socket_arg $ store_arg $ jobs_arg $ capacity $ timeout
          $ idle $ journal_arg)

let submit_cmd =
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"S"
             ~doc:"Per-job wall-clock deadline, overriding the daemon's \
                   default.")
  in
  let run socket d b c k certify timeout =
    wrap (fun () -> cmd_submit socket d b c k certify timeout)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Queue one check on a running verification service and wait \
             for its verdict (exit code 1 when a bug is found, 2 on \
             timeout, busy or error)")
    Term.(const run $ socket_arg $ design_arg $ bug_arg $ check_arg
          $ depth_arg $ certify_arg $ timeout)

let status_cmd =
  Cmd.v
    (Cmd.info "status" ~doc:"Print one status line from a running \
                             verification service")
    Term.(const (fun s -> wrap (fun () -> cmd_status s)) $ socket_arg)

let run ~argv () =
  current_argv := argv;
  let info =
    Cmd.info "aqed_cli" ~version:"1.0"
      ~doc:"A-QED pre-silicon verification of hardware accelerators"
  in
  Cmd.eval' ~argv
    (Cmd.group info
       [ list_cmd; check_cmd; verify_cmd; mutate_cmd; sim_cmd; sat_cmd;
         report_cmd; store_cmd; serve_cmd; submit_cmd; status_cmd ])
