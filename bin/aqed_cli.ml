let () = exit (Cli.run ~argv:Sys.argv ())
